// Package emu implements the functional (architectural) emulator for the
// modelled ISAs. It executes an isa.Program against architectural state and
// a flat memory image, producing the dynamic instruction stream (resolved
// addresses, branch outcomes, vector lengths) that drives the cycle-level
// timing simulator — the same trace-driven methodology the paper used with
// ATOM feeding the Jinks simulator.
package emu

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/simd"
)

// Dyn is one dynamic (executed) instruction, as consumed by the timing model.
type Dyn struct {
	SI     int // static instruction index
	Op     isa.Opcode
	Class  isa.Class
	Taken  bool // branch outcome
	Target int  // branch destination (valid if Taken)
	EA     uint64
	Stride int64 // vector element stride in bytes
	NElem  int   // elements accessed (vector memory); 1 for scalar memory
	Size   int   // element size in bytes
	VL     int   // vector length governing this op (vector classes)
}

// Machine is the architectural state of one running program.
type Machine struct {
	Prog *isa.Program
	Mem  *Memory

	R  [isa.NumInt]uint64
	F  [isa.NumFP]float64
	M  [isa.NumMedia]uint64
	A  [isa.NumAcc]simd.Acc
	V  [isa.NumMom][isa.MaxVL]uint64
	VA [isa.NumMomAcc]simd.Acc
	VL int

	PC    int
	Steps uint64
	Err   error
}

// New creates a machine with the program loaded and memory initialised.
func New(p *isa.Program) *Machine {
	m := &Machine{Prog: p, VL: isa.MaxVL}
	size := p.MemSize
	if min := p.DataBase + uint64(len(p.Data)); size < min {
		size = min
	}
	m.Mem = NewMemory(size)
	copy(m.Mem.buf[p.DataBase:], p.Data)
	return m
}

// Done reports whether the program has run to completion.
func (m *Machine) Done() bool { return m.PC >= len(m.Prog.Insts) || m.Err != nil }

// op2 resolves the second ALU operand: register if valid, else immediate.
func (m *Machine) op2(in *isa.Inst) int64 {
	if in.Src[1].Valid() {
		return int64(m.reg(in.Src[1]))
	}
	return in.Imm
}

func (m *Machine) reg(r isa.Reg) uint64 {
	switch r.Kind {
	case isa.KindInt:
		if r.Idx == 31 {
			return 0
		}
		return m.R[r.Idx]
	case isa.KindMedia:
		return m.M[r.Idx]
	default:
		panic(fmt.Sprintf("emu: scalar read of %v", r))
	}
}

func (m *Machine) setInt(r isa.Reg, v uint64) {
	if r.Kind != isa.KindInt {
		panic(fmt.Sprintf("emu: int write to %v", r))
	}
	if r.Idx != 31 {
		m.R[r.Idx] = v
	}
}

func (m *Machine) setMedia(r isa.Reg, v uint64) {
	if r.Kind != isa.KindMedia {
		panic(fmt.Sprintf("emu: media write to %v", r))
	}
	m.M[r.Idx] = v
}

// acc returns the accumulator register operand (MDMX A or MOM VA).
func (m *Machine) acc(r isa.Reg) *simd.Acc {
	switch r.Kind {
	case isa.KindAcc:
		return &m.A[r.Idx]
	case isa.KindMomAcc:
		return &m.VA[r.Idx]
	default:
		panic(fmt.Sprintf("emu: accumulator operand is %v", r))
	}
}

// Step executes one instruction and returns its dynamic record.
// ok is false when the program has finished (or faulted; check m.Err).
func (m *Machine) Step() (d Dyn, ok bool) {
	if m.Done() {
		return Dyn{}, false
	}
	defer func() {
		if r := recover(); r != nil {
			if f, isFault := r.(memFault); isFault {
				m.Err = fmt.Errorf("%s: pc=%d %s: %w",
					m.Prog.Name, m.PC, m.Prog.Insts[m.PC].String(), error(f))
				ok = false
				return
			}
			panic(r)
		}
	}()

	in := &m.Prog.Insts[m.PC]
	info := in.Op.Info()
	d = Dyn{SI: m.PC, Op: in.Op, Class: info.Class, VL: m.VL}
	next := m.PC + 1

	switch in.Op {
	case isa.NOP:

	// ---- scalar integer ----
	case isa.LDA:
		m.setInt(in.Dst, m.reg(in.Src[0])+uint64(in.Imm))
	case isa.ADDQ:
		m.setInt(in.Dst, m.reg(in.Src[0])+uint64(m.op2(in)))
	case isa.SUBQ:
		m.setInt(in.Dst, m.reg(in.Src[0])-uint64(m.op2(in)))
	case isa.MULQ:
		m.setInt(in.Dst, uint64(int64(m.reg(in.Src[0]))*m.op2(in)))
	case isa.DIVQ:
		den := m.op2(in)
		if den == 0 {
			m.Err = fmt.Errorf("%s: pc=%d divide by zero", m.Prog.Name, m.PC)
			return Dyn{}, false
		}
		m.setInt(in.Dst, uint64(int64(m.reg(in.Src[0]))/den))
	case isa.UMULH:
		hi, _ := mul64(m.reg(in.Src[0]), uint64(m.op2(in)))
		m.setInt(in.Dst, hi)
	case isa.AND:
		m.setInt(in.Dst, m.reg(in.Src[0])&uint64(m.op2(in)))
	case isa.OR:
		m.setInt(in.Dst, m.reg(in.Src[0])|uint64(m.op2(in)))
	case isa.XOR:
		m.setInt(in.Dst, m.reg(in.Src[0])^uint64(m.op2(in)))
	case isa.BIC:
		m.setInt(in.Dst, m.reg(in.Src[0])&^uint64(m.op2(in)))
	case isa.SLL:
		m.setInt(in.Dst, m.reg(in.Src[0])<<(uint64(m.op2(in))&63))
	case isa.SRL:
		m.setInt(in.Dst, m.reg(in.Src[0])>>(uint64(m.op2(in))&63))
	case isa.SRA:
		m.setInt(in.Dst, uint64(int64(m.reg(in.Src[0]))>>(uint64(m.op2(in))&63)))
	case isa.CMPEQ:
		m.setInt(in.Dst, b2u(int64(m.reg(in.Src[0])) == m.op2(in)))
	case isa.CMPLT:
		m.setInt(in.Dst, b2u(int64(m.reg(in.Src[0])) < m.op2(in)))
	case isa.CMPLE:
		m.setInt(in.Dst, b2u(int64(m.reg(in.Src[0])) <= m.op2(in)))
	case isa.CMPULT:
		m.setInt(in.Dst, b2u(m.reg(in.Src[0]) < uint64(m.op2(in))))
	case isa.CMPULE:
		m.setInt(in.Dst, b2u(m.reg(in.Src[0]) <= uint64(m.op2(in))))
	case isa.CMOVEQ:
		if int64(m.reg(in.Src[0])) == 0 {
			m.setInt(in.Dst, uint64(m.op2(in)))
		}
	case isa.CMOVNE:
		if int64(m.reg(in.Src[0])) != 0 {
			m.setInt(in.Dst, uint64(m.op2(in)))
		}
	case isa.CMOVLT:
		if int64(m.reg(in.Src[0])) < 0 {
			m.setInt(in.Dst, uint64(m.op2(in)))
		}
	case isa.CMOVGE:
		if int64(m.reg(in.Src[0])) >= 0 {
			m.setInt(in.Dst, uint64(m.op2(in)))
		}
	case isa.SEXTB:
		m.setInt(in.Dst, uint64(int64(int8(m.reg(in.Src[0])))))
	case isa.SEXTW:
		m.setInt(in.Dst, uint64(int64(int16(m.reg(in.Src[0])))))
	case isa.SEXTL:
		m.setInt(in.Dst, uint64(int64(int32(m.reg(in.Src[0])))))

	// ---- scalar memory ----
	case isa.LDBU:
		ea := m.reg(in.Src[0]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 1
		m.setInt(in.Dst, uint64(m.Mem.Load8(ea)))
	case isa.LDWU:
		ea := m.reg(in.Src[0]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 2
		m.setInt(in.Dst, uint64(m.Mem.Load16(ea)))
	case isa.LDL:
		ea := m.reg(in.Src[0]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 4
		m.setInt(in.Dst, uint64(int64(int32(m.Mem.Load32(ea)))))
	case isa.LDQ:
		ea := m.reg(in.Src[0]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 8
		m.setInt(in.Dst, m.Mem.Load64(ea))
	case isa.STB:
		ea := m.reg(in.Src[1]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 1
		m.Mem.Store8(ea, uint8(m.reg(in.Src[0])))
	case isa.STW:
		ea := m.reg(in.Src[1]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 2
		m.Mem.Store16(ea, uint16(m.reg(in.Src[0])))
	case isa.STL:
		ea := m.reg(in.Src[1]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 4
		m.Mem.Store32(ea, uint32(m.reg(in.Src[0])))
	case isa.STQ:
		ea := m.reg(in.Src[1]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 8
		m.Mem.Store64(ea, m.reg(in.Src[0]))
	case isa.LDT:
		ea := m.reg(in.Src[0]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 8
		m.F[in.Dst.Idx] = f64frombits(m.Mem.Load64(ea))
	case isa.STT:
		ea := m.reg(in.Src[1]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 8
		m.Mem.Store64(ea, f64bits(m.F[in.Src[0].Idx]))

	// ---- branches ----
	case isa.BR:
		d.Taken, d.Target = true, in.Target
		next = in.Target
	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		v := int64(m.reg(in.Src[0]))
		var t bool
		switch in.Op {
		case isa.BEQ:
			t = v == 0
		case isa.BNE:
			t = v != 0
		case isa.BLT:
			t = v < 0
		case isa.BLE:
			t = v <= 0
		case isa.BGT:
			t = v > 0
		case isa.BGE:
			t = v >= 0
		}
		d.Taken, d.Target = t, in.Target
		if t {
			next = in.Target
		}

	// ---- scalar FP ----
	case isa.ADDT:
		m.F[in.Dst.Idx] = m.F[in.Src[0].Idx] + m.F[in.Src[1].Idx]
	case isa.SUBT:
		m.F[in.Dst.Idx] = m.F[in.Src[0].Idx] - m.F[in.Src[1].Idx]
	case isa.MULT:
		m.F[in.Dst.Idx] = m.F[in.Src[0].Idx] * m.F[in.Src[1].Idx]
	case isa.DIVT:
		m.F[in.Dst.Idx] = m.F[in.Src[0].Idx] / m.F[in.Src[1].Idx]
	case isa.CVTQT:
		m.F[in.Dst.Idx] = float64(int64(m.reg(in.Src[0])))
	case isa.CVTTQ:
		m.setInt(in.Dst, uint64(int64(m.F[in.Src[0].Idx])))

	// ---- media moves / loads ----
	case isa.LDQM:
		ea := m.reg(in.Src[0]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 8
		m.setMedia(in.Dst, m.Mem.Load64(ea))
	case isa.STQM:
		ea := m.reg(in.Src[1]) + uint64(in.Imm)
		d.EA, d.NElem, d.Size = ea, 1, 8
		m.Mem.Store64(ea, m.M[in.Src[0].Idx])
	case isa.MTM:
		m.setMedia(in.Dst, m.reg(in.Src[0]))
	case isa.MFM:
		m.setInt(in.Dst, m.M[in.Src[0].Idx])
	case isa.PZERO:
		m.setMedia(in.Dst, 0)

	// ---- accumulator readback (shared by MDMX A and MOM VA) ----
	case isa.RACH:
		m.setMedia(in.Dst, m.acc(in.Src[0]).ReadH(uint(in.Imm)))
	case isa.RACB:
		m.setMedia(in.Dst, m.acc(in.Src[0]).ReadB(uint(in.Imm)))
	case isa.RACSUM:
		a := m.acc(in.Src[0])
		if in.Imm == 0 { // byte mode
			m.setInt(in.Dst, uint64(a.SumB()))
		} else { // halfword mode
			m.setInt(in.Dst, uint64(a.SumH()))
		}
	case isa.WACH:
		m.acc(in.Dst).WriteH(m.M[in.Src[0].Idx])
	case isa.WACB:
		m.acc(in.Dst).WriteB(m.M[in.Src[0].Idx])

	// ---- MOM control and memory ----
	case isa.SETVL:
		v := int64(m.reg(in.Src[0]))
		if v < 0 {
			v = 0
		}
		if v > isa.MaxVL {
			v = isa.MaxVL
		}
		m.VL = int(v)
	case isa.SETVLI:
		v := in.Imm
		if v < 0 || v > isa.MaxVL {
			m.Err = fmt.Errorf("%s: pc=%d setvli %d out of range", m.Prog.Name, m.PC, v)
			return Dyn{}, false
		}
		m.VL = int(v)
	case isa.MOMLDQ:
		base := m.reg(in.Src[0]) + uint64(in.Imm)
		stride := int64(m.reg(in.Src[1]))
		d.EA, d.Stride, d.NElem, d.Size = base, stride, m.VL, 8
		for k := 0; k < m.VL; k++ {
			m.V[in.Dst.Idx][k] = m.Mem.Load64(base + uint64(int64(k)*stride))
		}
	case isa.MOMSTQ:
		base := m.reg(in.Src[1]) + uint64(in.Imm)
		stride := int64(m.reg(in.Src[2]))
		d.EA, d.Stride, d.NElem, d.Size = base, stride, m.VL, 8
		for k := 0; k < m.VL; k++ {
			m.Mem.Store64(base+uint64(int64(k)*stride), m.V[in.Src[0].Idx][k])
		}
	case isa.MOMSPLAT:
		for k := 0; k < isa.MaxVL; k++ {
			m.V[in.Dst.Idx][k] = m.M[in.Src[0].Idx]
		}
	case isa.MOMEXT:
		m.setMedia(in.Dst, m.V[in.Src[0].Idx][in.Imm&15])
	case isa.MOMINS:
		m.V[in.Dst.Idx][in.Imm&15] = m.M[in.Src[0].Idx]
	case isa.MOMMPVH:
		a := m.acc(in.Dst)
		coefs := m.M[in.Src[1].Idx]
		for k := 0; k < m.VL; k++ {
			c := int64(int16(simd.GetH(coefs, k%4)))
			a.MPVH(m.V[in.Src[0].Idx][k], c)
		}
	case isa.MOMTRANSH:
		src := &m.V[in.Src[0].Idx]
		var dst [isa.MaxVL]uint64
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				// element (r,c) of the result = element (c,r) of the source
				v := simd.GetH(src[2*c+r/4], r%4)
				w := &dst[2*r+c/4]
				*w = simd.SetH(*w, c%4, v)
			}
		}
		m.V[in.Dst.Idx] = dst
	case isa.MOMRSUMW:
		var s0, s1 uint32
		for k := 0; k < m.VL; k++ {
			w := m.V[in.Src[0].Idx][k]
			s0 += simd.GetW(w, 0)
			s1 += simd.GetW(w, 1)
		}
		m.setMedia(in.Dst, uint64(s0)|uint64(s1)<<32)
	case isa.MOMRMAXH:
		res := m.V[in.Src[0].Idx][0]
		for k := 1; k < m.VL; k++ {
			res = simd.MaxSH(res, m.V[in.Src[0].Idx][k])
		}
		if m.VL == 0 {
			res = 0
		}
		m.setMedia(in.Dst, res)

	default:
		if !m.execPacked(in) {
			m.Err = fmt.Errorf("%s: pc=%d unknown opcode %d", m.Prog.Name, m.PC, in.Op)
			return Dyn{}, false
		}
	}

	m.PC = next
	m.Steps++
	return d, true
}

// Run executes until completion or maxSteps, returning the dynamic
// instruction count.
func (m *Machine) Run(maxSteps uint64) (uint64, error) {
	start := m.Steps
	for !m.Done() {
		if m.Steps-start >= maxSteps {
			return m.Steps - start, fmt.Errorf("%s: exceeded %d steps", m.Prog.Name, maxSteps)
		}
		if _, ok := m.Step(); !ok {
			break
		}
	}
	return m.Steps - start, m.Err
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func mul64(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
