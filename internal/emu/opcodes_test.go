package emu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/simd"
)

// runALU executes "dst = op(a, b)" on fresh state and returns the integer
// destination value.
func runALU(t *testing.T, op isa.Opcode, a, b uint64) uint64 {
	t.Helper()
	bld := asm.New("alu")
	bld.MovI(isa.R(1), int64(a))
	bld.MovI(isa.R(2), int64(b))
	bld.Op(op, isa.R(3), isa.R(1), isa.R(2))
	m := emu.New(bld.Build())
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	return m.R[3]
}

func TestScalarALUOps(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a, b uint64
		want uint64
	}{
		{isa.ADDQ, 5, 7, 12},
		{isa.SUBQ, 5, 7, ^uint64(1)},                          // -2
		{isa.MULQ, uint64(0xffffffffffffffff), 3, ^uint64(2)}, // -1*3
		{isa.AND, 0xf0f0, 0xff00, 0xf000},
		{isa.OR, 0xf0f0, 0x0f0f, 0xffff},
		{isa.XOR, 0xff, 0x0f, 0xf0},
		{isa.BIC, 0xff, 0x0f, 0xf0},
		{isa.SLL, 1, 12, 1 << 12},
		{isa.SRL, 1 << 12, 12, 1},
		{isa.SRA, 0xf000000000000000, 2, 0xfc00000000000000},
		{isa.CMPEQ, 4, 4, 1},
		{isa.CMPEQ, 4, 5, 0},
		{isa.CMPLT, ^uint64(0), 0, 1}, // -1 < 0 signed
		{isa.CMPULT, ^uint64(0), 0, 0},
		{isa.CMPLE, 3, 3, 1},
		{isa.CMPULE, 3, 2, 0},
		{isa.UMULH, 1 << 63, 4, 2},
	}
	for _, c := range cases {
		if got := runALU(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", c.op.Info().Name, c.a, c.b, got, c.want)
		}
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	b := asm.New("div0")
	b.MovI(isa.R(1), 10)
	b.MovI(isa.R(2), 0)
	b.Op(isa.DIVQ, isa.R(3), isa.R(1), isa.R(2))
	m := emu.New(b.Build())
	if _, err := m.Run(10); err == nil {
		t.Fatal("expected divide-by-zero error")
	}
}

func TestSignExtensions(t *testing.T) {
	b := asm.New("sext")
	b.MovI(isa.R(1), 0x1ff)
	b.Op(isa.SEXTB, isa.R(2), isa.R(1), isa.Reg{})
	b.MovI(isa.R(3), 0x18000)
	b.Op(isa.SEXTW, isa.R(4), isa.R(3), isa.Reg{})
	b.MovI(isa.R(5), 0x180000000)
	b.Op(isa.SEXTL, isa.R(6), isa.R(5), isa.Reg{})
	m := emu.New(b.Build())
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if int64(m.R[2]) != -1 || int64(m.R[4]) != -32768 || int64(m.R[6]) != -(1<<31) {
		t.Errorf("sext results: %d %d %d", int64(m.R[2]), int64(m.R[4]), int64(m.R[6]))
	}
}

func TestZeroRegisterIsImmutable(t *testing.T) {
	b := asm.New("r31")
	b.MovI(isa.R(31), 42)
	b.Mov(isa.R(1), isa.R(31))
	m := emu.New(b.Build())
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.R[1] != 0 {
		t.Errorf("R31 should stay zero, read %d", m.R[1])
	}
}

func TestLoadStoreWidths(t *testing.T) {
	b := asm.New("ldst")
	b.Alloc("buf", 32, 8)
	base := isa.R(1)
	v := isa.R(2)
	b.MovI(base, int64(b.Sym("buf")))
	b.MovI(v, -2) // 0xfffe...
	b.Stb(v, base, 0)
	b.Stw(v, base, 2)
	b.Stl(v, base, 4)
	b.Stq(v, base, 8)
	b.Ldbu(isa.R(10), base, 0)
	b.Ldwu(isa.R(11), base, 2)
	b.Ldl(isa.R(12), base, 4)
	b.Ldq(isa.R(13), base, 8)
	m := emu.New(b.Build())
	if _, err := m.Run(20); err != nil {
		t.Fatal(err)
	}
	if m.R[10] != 0xfe || m.R[11] != 0xfffe {
		t.Errorf("unsigned loads: %#x %#x", m.R[10], m.R[11])
	}
	if int64(m.R[12]) != -2 {
		t.Errorf("LDL must sign-extend: %d", int64(m.R[12]))
	}
	if int64(m.R[13]) != -2 {
		t.Errorf("LDQ: %d", int64(m.R[13]))
	}
}

func TestFPOps(t *testing.T) {
	b := asm.New("fp")
	b.MovI(isa.R(1), 7)
	b.Op(isa.CVTQT, isa.F(0), isa.R(1), isa.Reg{})
	b.MovI(isa.R(2), 2)
	b.Op(isa.CVTQT, isa.F(1), isa.R(2), isa.Reg{})
	b.Op(isa.ADDT, isa.F(2), isa.F(0), isa.F(1))
	b.Op(isa.MULT, isa.F(3), isa.F(0), isa.F(1))
	b.Op(isa.SUBT, isa.F(4), isa.F(0), isa.F(1))
	b.Op(isa.DIVT, isa.F(5), isa.F(0), isa.F(1))
	b.Op(isa.CVTTQ, isa.R(3), isa.F(5), isa.Reg{})
	m := emu.New(b.Build())
	if _, err := m.Run(20); err != nil {
		t.Fatal(err)
	}
	if m.F[2] != 9 || m.F[3] != 14 || m.F[4] != 5 {
		t.Errorf("fp arith: %v %v %v", m.F[2], m.F[3], m.F[4])
	}
	if m.R[3] != 3 { // trunc(3.5)
		t.Errorf("cvttq: %d", m.R[3])
	}
}

// TestEveryPackedOpcodeMatchesSimd drives each packed opcode through the
// emulator and compares against the simd package applied directly.
func TestEveryPackedOpcodeMatchesSimd(t *testing.T) {
	a := uint64(0x80ff7f0012345678)
	c := uint64(0x7f80e001ffff0001)
	type tc struct {
		op   isa.Opcode
		want uint64
		imm  int64
	}
	cases := []tc{
		{isa.PADDB, simd.AddB(a, c), 0},
		{isa.PADDH, simd.AddH(a, c), 0},
		{isa.PADDW, simd.AddW(a, c), 0},
		{isa.PADDSB, simd.AddSB(a, c), 0},
		{isa.PADDSH, simd.AddSH(a, c), 0},
		{isa.PADDUSB, simd.AddUSB(a, c), 0},
		{isa.PADDUSH, simd.AddUSH(a, c), 0},
		{isa.PSUBB, simd.SubB(a, c), 0},
		{isa.PSUBH, simd.SubH(a, c), 0},
		{isa.PSUBW, simd.SubW(a, c), 0},
		{isa.PSUBSB, simd.SubSB(a, c), 0},
		{isa.PSUBSH, simd.SubSH(a, c), 0},
		{isa.PSUBUSB, simd.SubUSB(a, c), 0},
		{isa.PSUBUSH, simd.SubUSH(a, c), 0},
		{isa.PMULLH, simd.MulLH(a, c), 0},
		{isa.PMULHH, simd.MulHH(a, c), 0},
		{isa.PMULHUH, simd.MulHUH(a, c), 0},
		{isa.PMADDH, simd.MAddH(a, c), 0},
		{isa.PAVGB, simd.AvgB(a, c), 0},
		{isa.PAVGH, simd.AvgH(a, c), 0},
		{isa.PABSDB, simd.AbsDB(a, c), 0},
		{isa.PABSDH, simd.AbsDH(a, c), 0},
		{isa.PSADBW, simd.SADBW(a, c), 0},
		{isa.PMINUB, simd.MinUB(a, c), 0},
		{isa.PMAXUB, simd.MaxUB(a, c), 0},
		{isa.PMINSH, simd.MinSH(a, c), 0},
		{isa.PMAXSH, simd.MaxSH(a, c), 0},
		{isa.PCMPEQB, simd.CmpEqB(a, c), 0},
		{isa.PCMPEQH, simd.CmpEqH(a, c), 0},
		{isa.PCMPGTB, simd.CmpGtB(a, c), 0},
		{isa.PCMPGTH, simd.CmpGtH(a, c), 0},
		{isa.PCMPGTUB, simd.CmpGtUB(a, c), 0},
		{isa.PAND, a & c, 0},
		{isa.POR, a | c, 0},
		{isa.PXOR, a ^ c, 0},
		{isa.PANDN, a &^ c, 0},
		{isa.PACKSSHB, simd.PackSSHB(a, c), 0},
		{isa.PACKUSHB, simd.PackUSHB(a, c), 0},
		{isa.PACKSSWH, simd.PackSSWH(a, c), 0},
		{isa.PUNPKLB, simd.UnpackLB(a, c), 0},
		{isa.PUNPKHB, simd.UnpackHB(a, c), 0},
		{isa.PUNPKLH, simd.UnpackLH(a, c), 0},
		{isa.PUNPKHH, simd.UnpackHH(a, c), 0},
		{isa.PUNPKLW, simd.UnpackLW(a, c), 0},
		{isa.PUNPKHW, simd.UnpackHW(a, c), 0},
		{isa.PMOV, a, 0},
	}
	shiftCases := []tc{
		{isa.PSLLH, simd.SllH(a, 3), 3},
		{isa.PSLLW, simd.SllW(a, 3), 3},
		{isa.PSLLQ, a << 3, 3},
		{isa.PSRLH, simd.SrlH(a, 3), 3},
		{isa.PSRLW, simd.SrlW(a, 3), 3},
		{isa.PSRLQ, a >> 3, 3},
		{isa.PSRAH, simd.SraH(a, 3), 3},
		{isa.PSRAW, simd.SraW(a, 3), 3},
	}

	run := func(op isa.Opcode, imm int64, vec bool) uint64 {
		b := asm.New("pk")
		b.AllocQ("in", []uint64{a, c}, 8)
		base := isa.R(1)
		b.MovI(base, int64(b.Sym("in")))
		if !vec {
			b.Ldm(isa.M(0), base, 0)
			b.Ldm(isa.M(1), base, 8)
			if imm != 0 {
				b.OpI(op, isa.M(2), isa.M(0), imm)
			} else {
				b.Op(op, isa.M(2), isa.M(0), isa.M(1))
			}
			b.Op(isa.MFM, isa.R(2), isa.M(2), isa.Reg{})
		} else {
			stride := isa.R(3)
			b.MovI(stride, 0) // every row identical
			b.SetVLI(4)
			b.MomLd(isa.V(0), base, stride, 0)
			b.MomLd(isa.V(1), base, stride, 8)
			vop := op.Vector()
			if imm != 0 {
				b.OpI(vop, isa.V(2), isa.V(0), imm)
			} else {
				b.Op(vop, isa.V(2), isa.V(0), isa.V(1))
			}
			b.OpI(isa.MOMEXT, isa.M(2), isa.V(2), 2)
			b.Op(isa.MFM, isa.R(2), isa.M(2), isa.Reg{})
		}
		m := emu.New(b.Build())
		if _, err := m.Run(30); err != nil {
			t.Fatal(err)
		}
		return m.R[2]
	}

	for _, cse := range append(cases, shiftCases...) {
		if got := run(cse.op, cse.imm, false); got != cse.want {
			t.Errorf("packed %s = %#x, want %#x", cse.op.Info().Name, got, cse.want)
		}
		if got := run(cse.op, cse.imm, true); got != cse.want {
			t.Errorf("vector %s = %#x, want %#x", cse.op.Info().Name, got, cse.want)
		}
	}
}

func TestAccumulatorOpcodes(t *testing.T) {
	a := uint64(0x0102030405060708)
	c := uint64(0x1020304050607080)
	b := asm.New("acc")
	b.AllocQ("in", []uint64{a, c}, 8)
	base := isa.R(1)
	b.MovI(base, int64(b.Sym("in")))
	b.Ldm(isa.M(0), base, 0)
	b.Ldm(isa.M(1), base, 8)
	b.Op(isa.ACLR, isa.A(0), isa.Reg{}, isa.Reg{})
	b.Op(isa.ACCABDB, isa.A(0), isa.M(0), isa.M(1))
	b.Op(isa.ACCABDB, isa.A(0), isa.M(0), isa.M(1))
	b.OpI(isa.RACSUM, isa.R(2), isa.A(0), 0)
	b.Op(isa.ACLR, isa.A(1), isa.Reg{}, isa.Reg{})
	b.Op(isa.ACCMULH, isa.A(1), isa.M(0), isa.M(1))
	b.OpI(isa.RACSUM, isa.R(3), isa.A(1), 1)
	b.OpI(isa.RACH, isa.M(5), isa.A(1), 0)
	b.Op(isa.MFM, isa.R(4), isa.M(5), isa.Reg{})
	m := emu.New(b.Build())
	if _, err := m.Run(30); err != nil {
		t.Fatal(err)
	}
	var acc simd.Acc
	acc.AbsDB(a, c)
	acc.AbsDB(a, c)
	if int64(m.R[2]) != acc.SumB() {
		t.Errorf("ACCABDB sum: %d want %d", int64(m.R[2]), acc.SumB())
	}
	var acc2 simd.Acc
	acc2.MulH(a, c)
	if int64(m.R[3]) != acc2.SumH() {
		t.Errorf("ACCMULH sum: %d want %d", int64(m.R[3]), acc2.SumH())
	}
	if m.R[4] != acc2.ReadH(0) {
		t.Errorf("RACH: %#x want %#x", m.R[4], acc2.ReadH(0))
	}
}

func TestMomTranspose(t *testing.T) {
	// Fill an 8x8 halfword matrix with value r*8+c, transpose, check.
	b := asm.New("trans")
	vals := make([]uint64, 16)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			w := 2*r + c/4
			vals[w] |= uint64(uint16(r*8+c)) << (16 * uint(c%4))
		}
	}
	b.AllocQ("in", vals, 8)
	b.Alloc("out", 128, 8)
	base, stride, outp := isa.R(1), isa.R(2), isa.R(3)
	b.MovI(base, int64(b.Sym("in")))
	b.MovI(outp, int64(b.Sym("out")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	b.MomLd(isa.V(0), base, stride, 0)
	b.Op(isa.MOMTRANSH, isa.V(1), isa.V(0), isa.Reg{})
	b.MomSt(isa.V(1), outp, stride, 0)
	m := emu.New(b.Build())
	if _, err := m.Run(30); err != nil {
		t.Fatal(err)
	}
	out := m.Mem.Bytes(m.Prog.Sym("out"), 128)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			got := uint16(out[2*(r*8+c)]) | uint16(out[2*(r*8+c)+1])<<8
			want := uint16(c*8 + r)
			if got != want {
				t.Fatalf("transposed (%d,%d) = %d, want %d", r, c, got, want)
			}
		}
	}
}

func TestMomReductions(t *testing.T) {
	b := asm.New("red")
	vals := []uint64{}
	for k := 0; k < 16; k++ {
		vals = append(vals, uint64(uint32(k+1))|uint64(uint32(100+k))<<32)
	}
	b.AllocQ("in", vals, 8)
	base, stride := isa.R(1), isa.R(2)
	b.MovI(base, int64(b.Sym("in")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	b.MomLd(isa.V(0), base, stride, 0)
	b.Op(isa.MOMRSUMW, isa.M(0), isa.V(0), isa.Reg{})
	b.Op(isa.MOMRMAXH, isa.M(1), isa.V(0), isa.Reg{})
	b.Op(isa.MFM, isa.R(3), isa.M(0), isa.Reg{})
	b.Op(isa.MFM, isa.R(4), isa.M(1), isa.Reg{})
	m := emu.New(b.Build())
	if _, err := m.Run(30); err != nil {
		t.Fatal(err)
	}
	sumLo := uint32(0)
	sumHi := uint32(0)
	for k := 0; k < 16; k++ {
		sumLo += uint32(k + 1)
		sumHi += uint32(100 + k)
	}
	if uint32(m.R[3]) != sumLo || uint32(m.R[3]>>32) != sumHi {
		t.Errorf("MOMRSUMW = %#x, want lo=%d hi=%d", m.R[3], sumLo, sumHi)
	}
	// Max across words of halfword lane 0 is 16 (k+1 max).
	if uint16(m.R[4]) != 16 {
		t.Errorf("MOMRMAXH lane0 = %d, want 16", uint16(m.R[4]))
	}
}

func TestMomSplatExtInsert(t *testing.T) {
	b := asm.New("splat")
	b.MovI(isa.R(1), 0x1234)
	b.Op(isa.MTM, isa.M(0), isa.R(1), isa.Reg{})
	b.Op(isa.MOMSPLAT, isa.V(0), isa.M(0), isa.Reg{})
	b.OpI(isa.MOMEXT, isa.M(1), isa.V(0), 9)
	b.MovI(isa.R(2), 0x5678)
	b.Op(isa.MTM, isa.M(2), isa.R(2), isa.Reg{})
	b.OpI(isa.MOMINS, isa.V(0), isa.M(2), 9)
	b.OpI(isa.MOMEXT, isa.M(3), isa.V(0), 9)
	b.OpI(isa.MOMEXT, isa.M(4), isa.V(0), 8)
	b.Op(isa.MFM, isa.R(3), isa.M(1), isa.Reg{})
	b.Op(isa.MFM, isa.R(4), isa.M(3), isa.Reg{})
	b.Op(isa.MFM, isa.R(5), isa.M(4), isa.Reg{})
	m := emu.New(b.Build())
	if _, err := m.Run(30); err != nil {
		t.Fatal(err)
	}
	if m.R[3] != 0x1234 || m.R[4] != 0x5678 || m.R[5] != 0x1234 {
		t.Errorf("splat/ext/ins: %#x %#x %#x", m.R[3], m.R[4], m.R[5])
	}
}

func TestPartialVLLeavesTailUntouched(t *testing.T) {
	b := asm.New("vl")
	vals := make([]uint64, 16)
	for i := range vals {
		vals[i] = uint64(i + 1)
	}
	b.AllocQ("in", vals, 8)
	base, stride := isa.R(1), isa.R(2)
	b.MovI(base, int64(b.Sym("in")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	b.MomLd(isa.V(0), base, stride, 0)
	b.SetVLI(4)
	b.Op(isa.PADDB.Vector(), isa.V(0), isa.V(0), isa.V(0)) // double first 4 words
	m := emu.New(b.Build())
	if _, err := m.Run(30); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 16; k++ {
		want := uint64(k + 1)
		if k < 4 {
			want *= 2
		}
		if m.V[0][k] != want {
			t.Errorf("word %d = %d, want %d", k, m.V[0][k], want)
		}
	}
}

func TestPCMOVSelect(t *testing.T) {
	b := asm.New("pcmov")
	b.AllocQ("in", []uint64{0xaaaaaaaaaaaaaaaa, 0x5555555555555555, 0x00ff00ff00ff00ff}, 8)
	base := isa.R(1)
	b.MovI(base, int64(b.Sym("in")))
	b.Ldm(isa.M(0), base, 0)
	b.Ldm(isa.M(1), base, 8)
	b.Ldm(isa.M(2), base, 16)
	b.Op3(isa.PCMOV, isa.M(3), isa.M(0), isa.M(1), isa.M(2))
	b.Op(isa.MFM, isa.R(2), isa.M(3), isa.Reg{})
	m := emu.New(b.Build())
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	want := simd.Select(0xaaaaaaaaaaaaaaaa, 0x5555555555555555, 0x00ff00ff00ff00ff)
	if m.R[2] != want {
		t.Errorf("PCMOV = %#x, want %#x", m.R[2], want)
	}
}

func TestMOMMPVH(t *testing.T) {
	// Matrix-per-vector: va.lane48[l] += coef[k%4] * V[k].h[l] over VL rows.
	b := asm.New("mpv")
	rows := []uint64{
		simdPackH(1, 2, 3, 4),
		simdPackH(10, 20, 30, 40),
		simdPackH(100, 200, 300, 400),
	}
	b.AllocQ("rows", rows, 8)
	b.AllocQ("coef", []uint64{simdPackH(2, 3, 5, 0)}, 8)
	base, stride, cp := isa.R(1), isa.R(2), isa.R(3)
	b.MovI(base, int64(b.Sym("rows")))
	b.MovI(cp, int64(b.Sym("coef")))
	b.MovI(stride, 8)
	b.SetVLI(3)
	b.MomLd(isa.V(0), base, stride, 0)
	b.Ldm(isa.M(0), cp, 0)
	b.Op(isa.ACLR, isa.VA(0), isa.Reg{}, isa.Reg{})
	b.Op(isa.MOMMPVH, isa.VA(0), isa.V(0), isa.M(0))
	b.OpI(isa.RACSUM, isa.R(4), isa.VA(0), 1)
	m := emu.New(b.Build())
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	// lane l sum = 2*row0[l] + 3*row1[l] + 5*row2[l]
	want := int64(0)
	coefs := []int64{2, 3, 5}
	vals := [][]int64{{1, 2, 3, 4}, {10, 20, 30, 40}, {100, 200, 300, 400}}
	for l := 0; l < 4; l++ {
		for k := 0; k < 3; k++ {
			want += coefs[k] * vals[k][l]
		}
	}
	if got := int64(m.R[4]); got != want {
		t.Errorf("MPVH total = %d, want %d", got, want)
	}
}

// simdPackH packs four halfword lanes (test helper).
func simdPackH(a, b, c, d uint16) uint64 {
	return simd.PackH([4]uint16{a, b, c, d})
}

func TestVectorAccumulateSerialisesAcrossWords(t *testing.T) {
	// A matrix accumulator op must accumulate every active word.
	b := asm.New("vacc")
	vals := make([]uint64, 16)
	for i := range vals {
		vals[i] = simd.SplatB(uint64(i + 1))
	}
	b.AllocQ("in", vals, 8)
	base, stride := isa.R(1), isa.R(2)
	b.MovI(base, int64(b.Sym("in")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	b.MomLd(isa.V(0), base, stride, 0)
	b.Op(isa.ACLR, isa.VA(0), isa.Reg{}, isa.Reg{})
	b.Op(isa.ACCADDB.Vector(), isa.VA(0), isa.V(0), isa.Reg{})
	b.OpI(isa.RACSUM, isa.R(3), isa.VA(0), 0)
	m := emu.New(b.Build())
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	// Each word contributes 8 lanes of (i+1): total = 8 * sum(1..16).
	if got := int64(m.R[3]); got != 8*136 {
		t.Errorf("vector accumulate total = %d, want %d", got, 8*136)
	}
}

func TestVLZeroVectorOpsAreNoOps(t *testing.T) {
	b := asm.New("vl0")
	b.Alloc("buf", 16*8, 8)
	base, stride, zero := isa.R(1), isa.R(2), isa.R(3)
	b.MovI(base, int64(b.Sym("buf")))
	b.MovI(stride, 8)
	b.SetVLI(16)
	b.MomLd(isa.V(0), base, stride, 0)
	b.MovI(zero, 0)
	b.SetVL(zero)
	b.Op(isa.PADDB.Vector(), isa.V(0), isa.V(0), isa.V(0)) // no lanes active
	b.MomSt(isa.V(0), base, stride, 0)                     // stores nothing
	b.MovI(isa.R(4), 1)
	m := emu.New(b.Build())
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.R[4] != 1 {
		t.Error("program did not complete")
	}
	if m.VL != 0 {
		t.Errorf("VL = %d, want 0", m.VL)
	}
}
