package asm

import (
	"testing"

	"repro/internal/isa"
)

func TestLabelsResolve(t *testing.T) {
	b := New("t")
	b.Br("end")
	b.MovI(isa.R(1), 1)
	b.Label("end")
	b.MovI(isa.R(2), 2)
	p := b.Build()
	if p.Insts[0].Target != 2 {
		t.Errorf("forward branch resolved to %d, want 2", p.Insts[0].Target)
	}
}

func TestUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undefined label")
		}
	}()
	b := New("t")
	b.Br("nowhere")
	b.Build()
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate label")
		}
	}()
	b := New("t")
	b.Label("x")
	b.Label("x")
}

func TestDuplicateSymbolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate symbol")
		}
	}()
	b := New("t")
	b.Alloc("s", 8, 8)
	b.Alloc("s", 8, 8)
}

func TestAllocAlignmentAndContents(t *testing.T) {
	b := New("t")
	b.AllocBytes("a", []byte{1, 2, 3}, 8)
	addr2 := b.Alloc("b", 16, 8)
	if addr2%8 != 0 {
		t.Errorf("allocation not aligned: %#x", addr2)
	}
	h := b.AllocH("h", []int16{-1, 256}, 8)
	q := b.AllocQ("q", []uint64{0xdeadbeefcafef00d}, 8)
	p := b.Build()
	d := p.Data
	if d[h-DataBase] != 0xff || d[h-DataBase+1] != 0xff {
		t.Error("AllocH little-endian encoding wrong")
	}
	if d[q-DataBase] != 0x0d {
		t.Error("AllocQ little-endian encoding wrong")
	}
	if p.Sym("a") == 0 || p.MemSize < q+8 {
		t.Error("symbols or memory size wrong")
	}
}

func TestLoopEmitsBoundedCode(t *testing.T) {
	b := New("t")
	body := 0
	b.Loop(isa.R(1), 10, func() { body = b.Len() })
	p := b.Build()
	if body == 0 {
		t.Fatal("loop body not emitted")
	}
	// The final instruction is the backward conditional branch.
	last := p.Insts[len(p.Insts)-1]
	if last.Op != isa.BGT || last.Target <= 0 || last.Target >= len(p.Insts) {
		t.Errorf("loop back-branch malformed: %v", last)
	}
}

func TestLoopZeroCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Loop count 0")
		}
	}()
	b := New("t")
	b.Loop(isa.R(1), 0, func() {})
}

func TestIfElseShape(t *testing.T) {
	b := New("t")
	b.If(isa.R(1), func() {
		b.MovI(isa.R(2), 1)
	}, func() {
		b.MovI(isa.R(2), 2)
	})
	p := b.Build()
	// Expect: BEQ else; then; BR end; else: ...; end.
	if p.Insts[0].Op != isa.BEQ {
		t.Errorf("If should start with BEQ, got %v", p.Insts[0].Op)
	}
	foundBr := false
	for _, in := range p.Insts {
		if in.Op == isa.BR {
			foundBr = true
		}
	}
	if !foundBr {
		t.Error("If/else should contain an unconditional branch over the else arm")
	}
}

func TestProgramStats(t *testing.T) {
	b := New("t")
	b.MovI(isa.R(1), 5)
	b.Ldq(isa.R(2), isa.R(1), 0)
	b.Stq(isa.R(2), isa.R(1), 8)
	b.Beq(isa.R(2), "end")
	b.Label("end")
	p := b.Build()
	st := p.Stats()
	if st.Total != 4 || st.Branches != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.ByClass[isa.ClassLoad] != 1 || st.ByClass[isa.ClassStore] != 1 {
		t.Errorf("class counts wrong: %+v", st.ByClass)
	}
}

func TestLoopDynAndWhileSemantics(t *testing.T) {
	// LoopDyn runs exactly ctr times; While runs while cond != 0.
	b := New("dyn")
	b.Alloc("out", 16, 8)
	ctr, acc, outp, cond := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	b.MovI(ctr, 7)
	b.MovI(acc, 0)
	b.LoopDyn(ctr, func() {
		b.AddI(acc, acc, 1)
	})
	b.MovI(outp, int64(b.Sym("out")))
	b.Stq(acc, outp, 0)
	// While: count down from 5.
	b.MovI(ctr, 5)
	b.MovI(acc, 0)
	b.While(cond, func() {
		b.Mov(cond, ctr)
	}, func() {
		b.AddI(acc, acc, 2)
		b.AddI(ctr, ctr, -1)
	})
	b.Stq(acc, outp, 8)
	p := b.Build()
	m := newTestMachine(t, p)
	if got := m.Mem.Load64(p.Sym("out")); got != 7 {
		t.Errorf("LoopDyn body ran %d times, want 7", got)
	}
	if got := m.Mem.Load64(p.Sym("out") + 8); got != 10 {
		t.Errorf("While accumulated %d, want 10", got)
	}
}

func TestLoopVarInduction(t *testing.T) {
	b := New("lv")
	b.Alloc("out", 8, 8)
	ctr, idx, acc, outp := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	b.MovI(acc, 0)
	b.LoopVar(ctr, idx, 10, 3, 5, func() { // 10,13,16,19,22
		b.Add(acc, acc, idx)
	})
	b.MovI(outp, int64(b.Sym("out")))
	b.Stq(acc, outp, 0)
	p := b.Build()
	m := newTestMachine(t, p)
	if got := m.Mem.Load64(p.Sym("out")); got != 80 {
		t.Errorf("LoopVar sum %d, want 80", got)
	}
}
