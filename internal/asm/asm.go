// Package asm provides a small program-builder API ("assembler") used to
// express workloads in the modelled ISAs. It plays the role the hand-written
// emulation-library calls played in the paper: kernels and applications are
// written against this API and compiled into isa.Programs executed by the
// functional emulator and timed by the cycle-level simulator.
//
// The builder supports labels with forward references, structured loop
// helpers, and a data-segment allocator with named symbols.
package asm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// DataBase is the base address of every program's data segment. A non-zero
// base means address 0 is never valid, catching uninitialised pointers.
const DataBase = 0x10000

// Builder incrementally constructs an isa.Program.
type Builder struct {
	name    string
	insts   []isa.Inst
	labels  map[string]int // label -> instruction index
	fixups  map[int]string // instruction index -> unresolved label
	symbols map[string]uint64
	data    []byte
	nextLbl int
}

// New returns an empty Builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		fixups:  make(map[int]string),
		symbols: make(map[string]uint64),
	}
}

// ---- Data segment ----

// Alloc reserves size bytes aligned to align and binds them to a symbol.
// It returns the absolute address.
func (b *Builder) Alloc(name string, size int, align int) uint64 {
	if align <= 0 {
		align = 8
	}
	if _, dup := b.symbols[name]; dup {
		panic("asm: duplicate symbol " + name)
	}
	for len(b.data)%align != 0 {
		b.data = append(b.data, 0)
	}
	addr := DataBase + uint64(len(b.data))
	b.data = append(b.data, make([]byte, size)...)
	b.symbols[name] = addr
	return addr
}

// AllocBytes reserves and initialises a byte region.
func (b *Builder) AllocBytes(name string, content []byte, align int) uint64 {
	addr := b.Alloc(name, len(content), align)
	copy(b.data[addr-DataBase:], content)
	return addr
}

// AllocH reserves and initialises a region of 16-bit little-endian values.
func (b *Builder) AllocH(name string, vals []int16, align int) uint64 {
	if align < 2 {
		align = 8
	}
	addr := b.Alloc(name, 2*len(vals), align)
	for i, v := range vals {
		binary.LittleEndian.PutUint16(b.data[addr-DataBase+uint64(2*i):], uint16(v))
	}
	return addr
}

// AllocW reserves and initialises a region of 32-bit little-endian values.
func (b *Builder) AllocW(name string, vals []int32, align int) uint64 {
	if align < 4 {
		align = 8
	}
	addr := b.Alloc(name, 4*len(vals), align)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b.data[addr-DataBase+uint64(4*i):], uint32(v))
	}
	return addr
}

// AllocQ reserves and initialises a region of 64-bit little-endian values.
func (b *Builder) AllocQ(name string, vals []uint64, align int) uint64 {
	if align < 8 {
		align = 8
	}
	addr := b.Alloc(name, 8*len(vals), align)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b.data[addr-DataBase+uint64(8*i):], v)
	}
	return addr
}

// Sym returns the address of a previously allocated symbol.
func (b *Builder) Sym(name string) uint64 {
	a, ok := b.symbols[name]
	if !ok {
		panic("asm: unknown symbol " + name)
	}
	return a
}

// ---- Raw emission ----

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(in isa.Inst) int {
	b.insts = append(b.insts, in)
	return len(b.insts) - 1
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Op emits a three-register operation.
func (b *Builder) Op(op isa.Opcode, dst, s0, s1 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: dst, Src: [3]isa.Reg{s0, s1}})
}

// Op3 emits a four-operand operation (e.g. PCMOV, MOMSTQ).
func (b *Builder) Op3(op isa.Opcode, dst, s0, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: dst, Src: [3]isa.Reg{s0, s1, s2}})
}

// OpI emits an operation whose second operand is an immediate.
func (b *Builder) OpI(op isa.Opcode, dst, s0 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Dst: dst, Src: [3]isa.Reg{s0}, Imm: imm})
}

// ---- Scalar helpers ----

// MovI loads a 64-bit immediate into an integer register.
func (b *Builder) MovI(dst isa.Reg, v int64) { b.OpI(isa.LDA, dst, isa.Zero, v) }

// Mov copies an integer register.
func (b *Builder) Mov(dst, src isa.Reg) { b.OpI(isa.LDA, dst, src, 0) }

// AddI emits dst = src + imm.
func (b *Builder) AddI(dst, src isa.Reg, imm int64) { b.OpI(isa.LDA, dst, src, imm) }

// Add emits dst = a + b.
func (b *Builder) Add(dst, a, c isa.Reg) { b.Op(isa.ADDQ, dst, a, c) }

// Sub emits dst = a - b.
func (b *Builder) Sub(dst, a, c isa.Reg) { b.Op(isa.SUBQ, dst, a, c) }

// Mul emits dst = a * b.
func (b *Builder) Mul(dst, a, c isa.Reg) { b.Op(isa.MULQ, dst, a, c) }

// MulI emits dst = a * imm.
func (b *Builder) MulI(dst, a isa.Reg, imm int64) { b.OpI(isa.MULQ, dst, a, imm) }

// SllI emits dst = a << imm.
func (b *Builder) SllI(dst, a isa.Reg, imm int64) { b.OpI(isa.SLL, dst, a, imm) }

// SraI emits dst = a >> imm (arithmetic).
func (b *Builder) SraI(dst, a isa.Reg, imm int64) { b.OpI(isa.SRA, dst, a, imm) }

// SrlI emits dst = a >> imm (logical).
func (b *Builder) SrlI(dst, a isa.Reg, imm int64) { b.OpI(isa.SRL, dst, a, imm) }

// AndI emits dst = a & imm.
func (b *Builder) AndI(dst, a isa.Reg, imm int64) { b.OpI(isa.AND, dst, a, imm) }

// Load helpers: dst <- mem[base+off].
func (b *Builder) Ldbu(dst, base isa.Reg, off int64) { b.OpI(isa.LDBU, dst, base, off) }
func (b *Builder) Ldwu(dst, base isa.Reg, off int64) { b.OpI(isa.LDWU, dst, base, off) }
func (b *Builder) Ldl(dst, base isa.Reg, off int64)  { b.OpI(isa.LDL, dst, base, off) }
func (b *Builder) Ldq(dst, base isa.Reg, off int64)  { b.OpI(isa.LDQ, dst, base, off) }

// Store helpers: mem[base+off] <- val.
func (b *Builder) Stb(val, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.STB, Src: [3]isa.Reg{val, base}, Imm: off})
}
func (b *Builder) Stw(val, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.STW, Src: [3]isa.Reg{val, base}, Imm: off})
}
func (b *Builder) Stl(val, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.STL, Src: [3]isa.Reg{val, base}, Imm: off})
}
func (b *Builder) Stq(val, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.STQ, Src: [3]isa.Reg{val, base}, Imm: off})
}

// Media load/store.
func (b *Builder) Ldm(dst, base isa.Reg, off int64) { b.OpI(isa.LDQM, dst, base, off) }
func (b *Builder) Stm(val, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.STQM, Src: [3]isa.Reg{val, base}, Imm: off})
}

// ---- MOM helpers ----

// SetVLI sets the vector length to a constant.
func (b *Builder) SetVLI(vl int) {
	b.Emit(isa.Inst{Op: isa.SETVLI, Dst: isa.VLReg, Imm: int64(vl)})
}

// SetVL sets the vector length from a register (clamped to MaxVL).
func (b *Builder) SetVL(src isa.Reg) {
	b.Emit(isa.Inst{Op: isa.SETVL, Dst: isa.VLReg, Src: [3]isa.Reg{src}})
}

// MomLd emits a MOM strided vector load: v <- mem[base+off + k*stride].
func (b *Builder) MomLd(v, base, stride isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.MOMLDQ, Dst: v, Src: [3]isa.Reg{base, stride}, Imm: off})
}

// MomSt emits a MOM strided vector store.
func (b *Builder) MomSt(v, base, stride isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.MOMSTQ, Src: [3]isa.Reg{v, base, stride}, Imm: off})
}

// ---- Labels and branches ----

// genLabel returns a fresh internal label name.
func (b *Builder) genLabel(prefix string) string {
	b.nextLbl++
	return fmt.Sprintf(".%s%d", prefix, b.nextLbl)
}

// Label binds name to the next instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("asm: duplicate label " + name)
	}
	b.labels[name] = len(b.insts)
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) { b.branch(isa.BR, isa.Reg{}, label) }

// Branch helpers testing a register against zero.
func (b *Builder) Beq(r isa.Reg, label string) { b.branch(isa.BEQ, r, label) }
func (b *Builder) Bne(r isa.Reg, label string) { b.branch(isa.BNE, r, label) }
func (b *Builder) Blt(r isa.Reg, label string) { b.branch(isa.BLT, r, label) }
func (b *Builder) Ble(r isa.Reg, label string) { b.branch(isa.BLE, r, label) }
func (b *Builder) Bgt(r isa.Reg, label string) { b.branch(isa.BGT, r, label) }
func (b *Builder) Bge(r isa.Reg, label string) { b.branch(isa.BGE, r, label) }

func (b *Builder) branch(op isa.Opcode, r isa.Reg, label string) {
	idx := b.Emit(isa.Inst{Op: op, Src: [3]isa.Reg{r}, Target: -1})
	b.fixups[idx] = label
}

// ---- Structured loops ----

// Loop emits a counted loop running body count times, counting the register
// ctr from count down to 1 (do-while form, one branch per iteration). The
// body must not clobber ctr. count must be >= 1.
func (b *Builder) Loop(ctr isa.Reg, count int64, body func()) {
	if count < 1 {
		panic("asm: Loop count must be >= 1")
	}
	b.MovI(ctr, count)
	top := b.genLabel("loop")
	b.Label(top)
	body()
	b.OpI(isa.SUBQ, ctr, ctr, 1)
	b.Bgt(ctr, top)
}

// LoopVar emits a loop with an induction variable idx stepping from start by
// step, executing body count times. ctr is a scratch counter register.
func (b *Builder) LoopVar(ctr, idx isa.Reg, start, step, count int64, body func()) {
	b.MovI(idx, start)
	b.Loop(ctr, count, func() {
		body()
		b.AddI(idx, idx, step)
	})
}

// LoopDyn emits a do-while loop running until ctr (already loaded with a
// positive count) reaches zero. The body must not clobber ctr.
func (b *Builder) LoopDyn(ctr isa.Reg, body func()) {
	top := b.genLabel("loopd")
	b.Label(top)
	body()
	b.OpI(isa.SUBQ, ctr, ctr, 1)
	b.Bgt(ctr, top)
}

// While emits a top-tested loop: while (cond(r) != 0) body. The caller emits
// the condition computation inside cond, leaving the test value in r.
func (b *Builder) While(r isa.Reg, cond func(), body func()) {
	top := b.genLabel("while")
	done := b.genLabel("endw")
	b.Label(top)
	cond()
	b.Beq(r, done)
	body()
	b.Br(top)
	b.Label(done)
}

// If emits: if (r != 0) then(); optional els().
func (b *Builder) If(r isa.Reg, then func(), els func()) {
	elseL := b.genLabel("else")
	endL := b.genLabel("endif")
	b.Beq(r, elseL)
	then()
	if els != nil {
		b.Br(endL)
	}
	b.Label(elseL)
	if els != nil {
		els()
		b.Label(endL)
	}
}

// ---- Build ----

// Build resolves all label references and returns the finished Program.
func (b *Builder) Build() *isa.Program {
	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	for idx, label := range b.fixups {
		t, ok := b.labels[label]
		if !ok {
			panic("asm: undefined label " + label)
		}
		insts[idx].Target = t
	}
	// Terminate: Build appends a final NOP so PC == len(insts) is the sole
	// halt condition and every branch target is in range.
	for idx := range insts {
		if insts[idx].Op.Info().Class == isa.ClassBranch {
			if insts[idx].Target < 0 || insts[idx].Target > len(insts) {
				panic(fmt.Sprintf("asm: branch at %d has bad target %d", idx, insts[idx].Target))
			}
		}
	}
	data := make([]byte, len(b.data))
	copy(data, b.data)
	syms := make(map[string]uint64, len(b.symbols))
	for k, v := range b.symbols {
		syms[k] = v
	}
	memSize := uint64(DataBase) + uint64(len(data))
	// Round memory up to a page-ish boundary with headroom.
	memSize = (memSize + 0xfff) &^ 0xfff
	return &isa.Program{
		Name:     b.name,
		Insts:    insts,
		Data:     data,
		DataBase: DataBase,
		Symbols:  syms,
		MemSize:  memSize,
	}
}
