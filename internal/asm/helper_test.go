package asm

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// newTestMachine runs a program to completion for the builder tests.
func newTestMachine(t *testing.T, p *isa.Program) *emu.Machine {
	t.Helper()
	m := emu.New(p)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}
