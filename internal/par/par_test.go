package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForRunsAll(t *testing.T) {
	var ran atomic.Int64
	if err := For(context.Background(), 100, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d jobs, want 100", ran.Load())
	}
}

func TestForZeroJobs(t *testing.T) {
	if err := For(context.Background(), 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForReturnsError(t *testing.T) {
	boom := errors.New("boom")
	err := For(context.Background(), 8, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

// TestForStopsAfterError: once job 0 fails, submission must stop — only the
// handful of jobs already handed to workers may still run.
func TestForStopsAfterError(t *testing.T) {
	const n = 10_000
	var ran atomic.Int64
	err := For(context.Background(), n, func(i int) error {
		if i == 0 {
			return errors.New("early failure")
		}
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got > n/2 {
		t.Fatalf("%d jobs ran after the failure; submission did not stop", got)
	}
}

// TestForStopsOnCancel: cancelling the context mid-sweep must stop
// submission — a hung or abandoned experiment can be walked away from.
func TestForStopsOnCancel(t *testing.T) {
	const n = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := For(ctx, n, func(i int) error {
		if ran.Add(1) == 1 {
			cancel() // first job to run aborts the sweep
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > n/2 {
		t.Fatalf("%d jobs ran after cancellation; submission did not stop", got)
	}
}

// TestForPreCancelled: a context that is already dead runs nothing.
func TestForPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := For(ctx, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d jobs ran under a pre-cancelled context, want 0", got)
	}
}

// TestForDeadline: an expired deadline reports DeadlineExceeded, the error
// the job service maps to the cancelled state.
func TestForDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := For(ctx, 10, func(i int) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestForJobErrorBeatsCancel: when a job fails and the context is then
// cancelled, the job error is still the one reported.
func TestForJobErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := For(ctx, 100, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}
