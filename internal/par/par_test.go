package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForRunsAll(t *testing.T) {
	var ran atomic.Int64
	if err := For(100, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d jobs, want 100", ran.Load())
	}
}

func TestForZeroJobs(t *testing.T) {
	if err := For(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForReturnsError(t *testing.T) {
	boom := errors.New("boom")
	err := For(8, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

// TestForStopsAfterError: once job 0 fails, submission must stop — only the
// handful of jobs already handed to workers may still run.
func TestForStopsAfterError(t *testing.T) {
	const n = 10_000
	var ran atomic.Int64
	err := For(n, func(i int) error {
		if i == 0 {
			return errors.New("early failure")
		}
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got > n/2 {
		t.Fatalf("%d jobs ran after the failure; submission did not stop", got)
	}
}
