// Package par provides the shared worker-pool helper used by every
// experiment driver.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for i in [0,n) on up to GOMAXPROCS workers. The first
// error stops submission of further work: jobs already started finish, but
// no new job begins once any job has failed. Cancelling ctx likewise stops
// submission (and makes already-queued jobs drain without running), so a
// caller holding a deadline can abandon a sweep mid-flight. The returned
// error is the failure with the lowest index among the jobs that ran, or
// ctx.Err() when the context ended the sweep without any job failing.
func For(ctx context.Context, n int, fn func(i int) error) error {
	return ForN(ctx, runtime.GOMAXPROCS(0), n, fn)
}

// ForN is For with an explicit worker count, for callers whose parallelism
// is a tuning knob rather than the host width (e.g. the sampled-simulation
// interval fan-out). workers is clamped to [1, n].
func ForN(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 0 {
		return ctx.Err()
	}
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
	)
	errs := make([]error, n)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed.Load() || ctx.Err() != nil {
					continue // drain without running
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	done := ctx.Done()
submit:
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		select {
		case <-done:
			break submit
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
