package mom

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// This file defines the canonical request form of every experiment the
// package can run — the unit of work of the momserver job service and the
// identity under which internal/store caches results. A JobRequest is
// normalised (defaults filled, irrelevant fields cleared, names
// canonicalised) and then hashed, so two requests that mean the same
// computation always produce the same SHA-256 key and, because every
// driver is deterministic and the JSON encoding is canonical (struct
// fields in declaration order, map keys sorted by encoding/json), the
// same stored bytes.

// ExpNames lists the runnable experiments in a stable order: the batch
// drivers first, then the two single-point runs.
var ExpNames = []string{
	"fig5", "fig7", "latency", "profile", "fetch", "hotspots",
	"regsweep", "memsweep", "kernel", "app",
}

// expDescriptions gives every runnable experiment a one-line description,
// surfaced by `momsim -exp list` and the sweep-spec docs so the exp axis
// of a SweepSpec is discoverable from the CLI.
var expDescriptions = map[string]string{
	"fig5":     "kernel speed-ups for every kernel × ISA × width on perfect memory (Figure 5)",
	"fig7":     "application speed-ups on the detailed cache hierarchies (Figure 7)",
	"latency":  "kernel slow-downs when memory latency rises from 1 to 50 cycles (Section 4.1)",
	"profile":  "nine-bucket cycle attribution for every kernel × ISA at 1- and 50-cycle memory",
	"fetch":    "dynamic instruction counts and packed word-operations per instruction",
	"hotspots": "per-PC cycle attribution (annotated disassembly) for every kernel × ISA",
	"regsweep": "cycle cost versus physical matrix-register-file size for one kernel",
	"memsweep": "cycle cost versus MSHR and L1-bank counts for one application",
	"kernel":   "one kernel on one machine point (ISA × width × memory, exact or sampled)",
	"app":      "one application on one machine point (ISA × width × memory, exact or sampled)",
}

// ExpDescription returns the one-line description of a runnable
// experiment ("" for names outside ExpNames).
func ExpDescription(name string) string { return expDescriptions[name] }

// JobRequest identifies one experiment computation. Exp selects the
// driver; the remaining fields parameterise it. Fields an experiment does
// not consume are cleared by Normalized so they cannot split the store key
// space.
type JobRequest struct {
	Exp    string `json:"exp"`              // one of ExpNames
	Scale  string `json:"scale,omitempty"`  // "test" (default) or "bench"
	Width  int    `json:"width,omitempty"`  // latency/profile/hotspots/kernel/app (default 4)
	ISA    string `json:"isa,omitempty"`    // kernel/app (default "MOM")
	Mem    string `json:"mem,omitempty"`    // kernel/app: perfect|perfect50|conv|multi|vector|collapsing (default "perfect")
	Kernel string `json:"kernel,omitempty"` // regsweep/kernel
	App    string `json:"app,omitempty"`    // memsweep/app

	// Sampled-simulation parameters (fig7/profile/hotspots/kernel/app;
	// see SampleSpec). All zero — the default — selects exact simulation,
	// so pre-sampling requests keep their canonical form and key.
	SamplePeriod   uint64 `json:"sample_period,omitempty"`
	SampleWarmup   uint64 `json:"sample_warmup,omitempty"`
	SampleInterval uint64 `json:"sample_interval,omitempty"`

	// SamplePar is the sampled-simulation worker count (0 = all host
	// cores, 1 = serial). It is a pure speed knob — parallel results are
	// bit-identical to serial — so Normalized always clears it: requests
	// differing only in SamplePar share one content-address key and one
	// stored result.
	SamplePar int `json:"sample_par,omitempty"`
}

// Sample assembles the request's sampled-simulation spec.
func (r JobRequest) Sample() SampleSpec {
	return SampleSpec{Period: r.SamplePeriod, Warmup: r.SampleWarmup, Interval: r.SampleInterval,
		Parallelism: r.SamplePar}
}

// BatchRequest is the envelope of the job service's POST /v1/jobs:batch:
// a list of job requests admitted in one round trip — the natural entry
// point for a design-space sweep, which expands a grid of configurations
// into many overlapping requests. Items are deduplicated by content
// address within the batch and against work already in flight before any
// of them reaches the admission queue. TimeoutMS, when set, applies to
// every item (like the single-submit timeout_ms, it is an execution
// deadline, never part of any store key).
type BatchRequest struct {
	Jobs      []JobRequest `json:"jobs"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// requestKeyDoc is the hashed document: the request plus the schema
// version, so a change to the result encoding retires every stored entry.
type requestKeyDoc struct {
	Schema int `json:"schema"`
	JobRequest
}

// ParseISA resolves an ISA name case-insensitively.
func ParseISA(s string) (ISA, error) {
	switch strings.ToLower(s) {
	case "alpha":
		return Alpha, nil
	case "mmx":
		return MMX, nil
	case "mdmx":
		return MDMX, nil
	case "mom":
		return MOM, nil
	}
	return 0, fmt.Errorf("unknown ISA %q (valid: Alpha, MMX, MDMX, MOM)", s)
}

// MemModelNames lists the memory-model selectors accepted by
// ParseMemModel, in a stable order.
var MemModelNames = []string{"perfect", "perfect50", "conv", "multi", "vector", "collapsing"}

// ParseMemModel resolves a memory-model selector (the -cache vocabulary of
// cmd/momsim).
func ParseMemModel(s string) (MemModel, error) {
	switch s {
	case "perfect":
		return PerfectMemory(1), nil
	case "perfect50":
		return PerfectMemory(50), nil
	case "conv":
		return DetailedMemory(Conventional), nil
	case "multi":
		return DetailedMemory(MultiAddress), nil
	case "vector":
		return DetailedMemory(VectorCache), nil
	case "collapsing":
		return DetailedMemory(CollapsingBuffer), nil
	}
	return MemModel{}, fmt.Errorf("unknown memory model %q (valid: %s)", s, strings.Join(MemModelNames, ", "))
}

func parseScale(s string) (Scale, error) {
	switch s {
	case "", "test":
		return ScaleTest, nil
	case "bench":
		return ScaleBench, nil
	}
	return 0, fmt.Errorf("unknown scale %q (valid: test, bench)", s)
}

func validName(kind, name string, valid []string) error {
	for _, n := range valid {
		if n == name {
			return nil
		}
	}
	if name == "" {
		return fmt.Errorf("missing %s (valid: %s)", kind, strings.Join(valid, ", "))
	}
	return fmt.Errorf("unknown %s %q (valid: %s)", kind, name, strings.Join(valid, ", "))
}

// Normalized validates the request and returns its canonical form:
// defaults filled in, names canonicalised (ISA case, scale), and every
// field the experiment does not consume cleared. The canonical form is
// what Key hashes, so e.g. {"exp":"fig5","width":8} and {"exp":"fig5"}
// are the same computation and the same store entry.
func (r JobRequest) Normalized() (JobRequest, error) {
	n := JobRequest{Exp: r.Exp}
	sc, err := parseScale(r.Scale)
	if err != nil {
		return n, err
	}
	n.Scale = "test"
	if sc == ScaleBench {
		n.Scale = "bench"
	}
	width := func() error {
		n.Width = r.Width
		if n.Width == 0 {
			n.Width = 4
		}
		switch n.Width {
		case 1, 2, 4, 8:
			return nil
		}
		return fmt.Errorf("invalid width %d (valid: 1, 2, 4, 8)", n.Width)
	}
	sample := func() error {
		sp := r.Sample()
		if err := sp.Validate(); err != nil {
			return err
		}
		n.SamplePeriod, n.SampleWarmup, n.SampleInterval = sp.Period, sp.Warmup, sp.Interval
		return nil
	}
	// Experiments outside the sampled-capable set reject sampling
	// parameters instead of silently dropping them: a caller asking for a
	// sampled fig5 would otherwise get (and cache) an exact run under a
	// request that promised something else.
	exactOnly := func() error {
		if r.Sample().Enabled() {
			return fmt.Errorf("experiment %q is exact-only: sampling is not supported (sampled-capable: fig7, profile, hotspots, kernel, app)", r.Exp)
		}
		return nil
	}
	point := func(kind string) error {
		if err := width(); err != nil {
			return err
		}
		i := r.ISA
		if i == "" {
			i = "MOM"
		}
		level, err := ParseISA(i)
		if err != nil {
			return err
		}
		n.ISA = level.String()
		m := r.Mem
		if m == "" {
			m = "perfect"
		}
		if _, err := ParseMemModel(m); err != nil {
			return err
		}
		n.Mem = m
		if kind == "kernel" {
			n.Kernel = r.Kernel
			return validName("kernel", n.Kernel, KernelNames())
		}
		n.App = r.App
		return validName("app", n.App, AppNames())
	}
	switch r.Exp {
	case "fig5", "fetch":
		if err := exactOnly(); err != nil {
			return n, err
		}
	case "fig7":
		if err := sample(); err != nil {
			return n, err
		}
	case "latency":
		if err := exactOnly(); err != nil {
			return n, err
		}
		if err := width(); err != nil {
			return n, err
		}
	case "profile", "hotspots":
		if err := width(); err != nil {
			return n, err
		}
		if err := sample(); err != nil {
			return n, err
		}
	case "regsweep":
		if err := exactOnly(); err != nil {
			return n, err
		}
		n.Kernel = r.Kernel
		if err := validName("kernel", n.Kernel, KernelNames()); err != nil {
			return n, err
		}
	case "memsweep":
		if err := exactOnly(); err != nil {
			return n, err
		}
		n.App = r.App
		if err := validName("app", n.App, AppNames()); err != nil {
			return n, err
		}
	case "kernel":
		if err := point("kernel"); err != nil {
			return n, err
		}
		if err := sample(); err != nil {
			return n, err
		}
	case "app":
		if err := point("app"); err != nil {
			return n, err
		}
		if err := sample(); err != nil {
			return n, err
		}
	default:
		return n, fmt.Errorf("unknown experiment %q (valid: %s)", r.Exp, strings.Join(ExpNames, ", "))
	}
	return n, nil
}

// CanonicalJSON returns the deterministic byte encoding of the normalised
// request prefixed with the schema version — the store's hashing preimage.
func (r JobRequest) CanonicalJSON() ([]byte, error) {
	n, err := r.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(requestKeyDoc{Schema: SchemaVersion, JobRequest: n})
}

// Key returns the content-addressed store key of the request: the
// lowercase hex SHA-256 of CanonicalJSON.
func (r JobRequest) Key() (string, error) {
	b, err := r.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// RunJobRequest executes one request and returns the canonical result
// document — the same single-line JSON the momsim -json paths emit, which
// is what the job service stores and serves. The context cancels the
// parallel drivers between sub-runs (see par.For); identical requests
// yield byte-identical documents.
func RunJobRequest(ctx context.Context, req JobRequest) ([]byte, error) {
	n, err := req.Normalized()
	if err != nil {
		return nil, err
	}
	sc, _ := parseScale(n.Scale)
	var buf bytes.Buffer
	write := func(rows any, err error) ([]byte, error) {
		if err != nil {
			return nil, err
		}
		if err := WriteExperimentJSON(&buf, n.Exp, rows); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	// The worker-count knob is cleared by Normalized (it must not split the
	// key space), so re-apply the caller's choice for execution only.
	sp := n.Sample()
	sp.Parallelism = req.SamplePar
	switch n.Exp {
	case "fig5":
		rows, err := Figure5(ctx, sc)
		return write(rows, err)
	case "fig7":
		rows, err := Figure7Sampled(ctx, sc, sp)
		return write(rows, err)
	case "latency":
		rows, err := LatencyStudy(ctx, sc, n.Width)
		return write(rows, err)
	case "profile":
		rows, err := ProfileStudySampled(ctx, sc, n.Width, sp)
		return write(rows, err)
	case "fetch":
		rows, err := FetchPressure(ctx, sc)
		return write(rows, err)
	case "hotspots":
		reps, err := HotspotStudySampled(ctx, sc, n.Width, sp)
		return write(reps, err)
	case "regsweep":
		rows, err := RegisterSweep(ctx, sc, n.Kernel)
		return write(rows, err)
	case "memsweep":
		rows, err := MemorySweep(ctx, sc, n.App)
		return write(rows, err)
	case "kernel", "app":
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		level, _ := ParseISA(n.ISA)
		m, _ := ParseMemModel(n.Mem)
		var res Result
		if n.Exp == "kernel" {
			res, err = RunKernelSampled(n.Kernel, level, n.Width, m, sc, sp)
		} else {
			res, err = RunAppSampled(n.App, level, n.Width, m, sc, sp)
		}
		if err != nil {
			return nil, err
		}
		if err := res.CheckInvariants(); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := WriteResultJSON(&buf, res); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("unknown experiment %q", n.Exp)
}
