package mom

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/par"
	"repro/internal/trace"
)

// The process-wide trace cache implements the capture-once / replay-many
// methodology of the paper (ATOM instruments the binary once, the trace
// feeds Jinks for every machine configuration). A dynamic trace depends
// only on (workload, ISA, scale) — never on issue width, cache mode or
// memory latency — so the experiment drivers capture each workload once and
// replay the recording across every machine configuration in parallel.
//
// The cache is an optimisation, never a correctness dependency: when a
// capture fails or the cache is full, callers fall back to the live
// interleaved emulate-and-time path, which produces identical results
// (TestTraceReplayEquivalence enforces this).

// TraceCacheBytes bounds the total memory the trace cache may hold.
// Captures that would push the cache past the bound are discarded and the
// affected runs use live emulation instead. It is read when an entry is
// first populated; set it before running experiments.
var TraceCacheBytes int64 = 1 << 30

// TraceStats reports the accumulated activity of the trace layer.
type TraceStats struct {
	Captures     int64         // traces recorded AND retained in the cache
	CaptureTime  time.Duration // wall-clock spent capturing retained traces
	Discarded    int64         // captures abandoned because the byte budget ran out
	Replays      int64         // timing runs fed from a recorded trace (streamed included)
	ReplayTime   time.Duration // wall-clock spent in trace-fed timing runs
	LiveRuns     int64         // timing runs that fell back to live emulation
	LiveBudget   int64         // ...of which: no trace within the RAM byte budget (transient)
	LiveFault    int64         // ...of which: capture failed permanently (build/emulation fault)
	CachedTraces int64         // traces currently held
	CachedBytes  int64         // bytes currently held

	// The disk artifact layer (zero when no artifact store is installed).
	DiskHits      int64 // traces materialised from a local disk artifact
	DiskMisses    int64 // artifact lookups that found nothing usable locally
	DiskWrites    int64 // traces persisted to the local artifact store
	PeerFetches   int64 // traces fetched from a peer's artifact store
	StreamReplays int64 // replays streamed straight from disk (RAM budget full)
}

var traceStats struct {
	captures, captureNS, discarded, replays, replayNS            atomic.Int64
	liveRuns, liveBudget, liveFault                              atomic.Int64
	diskHits, diskMisses, diskWrites, peerFetches, streamReplays atomic.Int64
}

// ReadTraceStats returns a snapshot of the trace-layer counters.
func ReadTraceStats() TraceStats {
	traceCache.mu.Lock()
	var held int64
	for _, e := range traceCache.entries {
		if e.state == capDone {
			held++
		}
	}
	bytes := traceCache.bytes
	traceCache.mu.Unlock()
	return TraceStats{
		Captures:      traceStats.captures.Load(),
		CaptureTime:   time.Duration(traceStats.captureNS.Load()),
		Discarded:     traceStats.discarded.Load(),
		Replays:       traceStats.replays.Load(),
		ReplayTime:    time.Duration(traceStats.replayNS.Load()),
		LiveRuns:      traceStats.liveRuns.Load(),
		LiveBudget:    traceStats.liveBudget.Load(),
		LiveFault:     traceStats.liveFault.Load(),
		CachedTraces:  held,
		CachedBytes:   bytes,
		DiskHits:      traceStats.diskHits.Load(),
		DiskMisses:    traceStats.diskMisses.Load(),
		DiskWrites:    traceStats.diskWrites.Load(),
		PeerFetches:   traceStats.peerFetches.Load(),
		StreamReplays: traceStats.streamReplays.Load(),
	}
}

// liveCause explains why a timing run fell back to live emulation, so
// operators can tell congestion (budget; transient, tunable) from faults
// (permanent) in momsim -v and the /metrics live-runs labels.
type liveCause int8

const (
	liveNone   liveCause = iota
	liveBudget           // no trace within the RAM byte budget right now
	liveFault            // capture failed permanently (build or emulation fault)
)

// countLiveRun records one live-fallback timing run with its cause.
func countLiveRun(cause liveCause) {
	traceStats.liveRuns.Add(1)
	if cause == liveFault {
		traceStats.liveFault.Add(1)
	} else {
		traceStats.liveBudget.Add(1)
	}
}

type traceKey struct {
	app   bool
	name  string
	isa   ISA
	scale Scale
}

// Capture lifecycle of one cache slot. A budget discard returns the slot
// to capEmpty so a later request retries once memory frees; workload
// faults and traces that cannot fit even an otherwise-empty cache are
// capFailed permanently.
const (
	capEmpty int8 = iota // no capture attempted, or the last one was discarded
	capRunning
	capDone
	capFailed
)

type traceEntry struct {
	state int8
	tr    *trace.Trace  // set iff state == capDone
	waitc chan struct{} // closed when the running attempt settles
}

var traceCache = struct {
	mu       sync.Mutex
	entries  map[traceKey]*traceEntry
	bytes    int64 // committed bytes of retained traces
	reserved int64 // in-flight capture reservations (see captureTrace)
}{entries: map[traceKey]*traceEntry{}}

// cachedTrace returns the recorded trace for a workload, filling the slot
// on first use. It returns nil when no trace can be materialised within the
// cache budget (or the workload faults); callers then use the live path.
func cachedTrace(key traceKey) *trace.Trace {
	tr, _ := cachedTraceCause(key)
	return tr
}

// cachedTraceCause is cachedTrace plus the reason a nil came back, so
// fallback paths can try a disk-streamed replay (budget) or count the right
// live-run cause (fault). An empty slot fills from the artifact layer —
// local disk, then the peer fetcher — before falling back to a fresh
// capture, which is written through to disk. A fill discarded for budget
// leaves the slot empty, so a later request retries once memory frees; only
// faults and traces larger than the whole budget fail permanently.
func cachedTraceCause(key traceKey) (*trace.Trace, liveCause) {
	traceCache.mu.Lock()
	e, ok := traceCache.entries[key]
	if !ok {
		e = &traceEntry{}
		traceCache.entries[key] = e
	}
	for {
		switch e.state {
		case capDone:
			tr := e.tr
			traceCache.mu.Unlock()
			return tr, liveNone
		case capFailed:
			traceCache.mu.Unlock()
			return nil, liveFault
		case capRunning:
			w := e.waitc
			traceCache.mu.Unlock()
			<-w
			traceCache.mu.Lock()
			if e.state == capEmpty {
				// The attempt we waited on was discarded for budget. Run
				// live now rather than piling on immediate retries; the
				// next request finds capEmpty and tries again.
				traceCache.mu.Unlock()
				return nil, liveBudget
			}
		case capEmpty:
			e.state = capRunning
			e.waitc = make(chan struct{})
			traceCache.mu.Unlock()
			tr, permanent := acquireTrace(key)
			traceCache.mu.Lock()
			switch {
			case tr != nil:
				e.state, e.tr = capDone, tr
			case permanent:
				e.state = capFailed
			default:
				e.state = capEmpty
			}
			close(e.waitc)
			traceCache.mu.Unlock()
			if tr != nil {
				return tr, liveNone
			}
			if permanent {
				return nil, liveFault
			}
			return nil, liveBudget
		}
	}
}

// acquireTrace fills one empty cache slot: the artifact layer first, then a
// fresh capture, written through to disk on success. A budget-refused
// artifact decode reports neither a trace nor permanence — the slot stays
// retryable and replay streams the artifact from disk in the meantime.
func acquireTrace(key traceKey) (tr *trace.Trace, permanent bool) {
	tr, budgetRefused := loadArtifact(key)
	if tr != nil {
		return tr, false
	}
	if budgetRefused {
		return nil, false
	}
	tr, permanent = captureTrace(key)
	if tr != nil {
		storeArtifact(key, tr)
	}
	return tr, permanent
}

// captureTrace records one workload, drawing memory from the shared cache
// budget in quantum-sized reservations (trace.CaptureGranted) so the sum
// of committed and in-flight capture bytes never exceeds TraceCacheBytes —
// concurrent captures of different keys cannot overshoot the bound the way
// a read-budget-then-capture race could. It reports permanent=true when no
// later attempt can succeed: a build or emulation fault, or a grant that
// would not fit even with every competing reservation released.
func captureTrace(key traceKey) (tr *trace.Trace, permanent bool) {
	var m *emu.Machine
	switch {
	case key.app:
		a, err := apps.ByName(key.name, apps.Scale(key.scale))
		if err != nil {
			return nil, true
		}
		m = emu.New(a.Build(key.isa.ext()))
	default:
		k, err := kernels.ByName(key.name, kernels.Scale(key.scale))
		if err != nil {
			return nil, true
		}
		m = emu.New(k.Build(key.isa.ext()))
	}
	var mine int64
	canNeverFit := false
	reserve := func(n int64) bool {
		traceCache.mu.Lock()
		defer traceCache.mu.Unlock()
		if traceCache.bytes+traceCache.reserved+n > TraceCacheBytes {
			// Would the grant fit if every other in-flight capture
			// released its reservation? Committed traces are never
			// evicted, so if not, no later attempt can succeed either.
			canNeverFit = traceCache.bytes+mine+n > TraceCacheBytes
			return false
		}
		traceCache.reserved += n
		mine += n
		return true
	}
	t0 := time.Now()
	tr, granted, err := trace.CaptureGranted(m, maxDynInsts, reserve)
	traceCache.mu.Lock()
	traceCache.reserved -= granted
	if err == nil {
		traceCache.bytes += tr.Bytes()
	}
	traceCache.mu.Unlock()
	if err != nil {
		if errors.Is(err, trace.ErrTooLarge) {
			traceStats.discarded.Add(1)
			return nil, canNeverFit
		}
		return nil, true
	}
	traceStats.captures.Add(1)
	traceStats.captureNS.Add(int64(time.Since(t0)))
	return tr, false
}

// runTraced times one workload from its recorded trace, sampled when sp is
// enabled (RunSampled with a disabled spec is exactly Run). When the trace
// cannot be materialised in RAM for budget but a disk artifact exists, the
// run streams straight from the file. ok is false when no trace is
// available at all — the live-fallback cause has already been counted and
// the caller must run live.
func runTraced(key traceKey, width int, m MemModel, sp SampleSpec) (Result, bool, error) {
	tr, cause := cachedTraceCause(key)
	if tr == nil {
		if cause == liveBudget {
			if res, ok, err := runStreamed(key, width, m, sp); ok {
				return res, true, err
			}
		}
		countLiveRun(cause)
		return Result{}, false, nil
	}
	sim := cpu.New(cpu.NewConfig(width, key.isa.ext()), m.build(width))
	t0 := time.Now()
	res, err := sim.RunSampled(tr.Reader(), maxDynInsts, sp.cpu())
	traceStats.replays.Add(1)
	traceStats.replayNS.Add(int64(time.Since(t0)))
	if err != nil {
		return Result{}, true, err
	}
	return fromCPU(key.name, key.isa, width, m.Name(), res), true, nil
}

// runStreamed feeds one timing run straight from the disk artifact — the
// replay path of a trace too large to materialise under TraceCacheBytes but
// already persisted. The streaming decoder keeps memory at one chunk; a
// corruption surfaced mid-replay drops the artifact and reports ok=false so
// the caller falls back to live emulation (never a wrong result: the
// decoder verifies every frame before the timing model sees its records).
func runStreamed(key traceKey, width int, m MemModel, sp SampleSpec) (Result, bool, error) {
	src, closer, ok := openArtifactStream(key)
	if !ok {
		return Result{}, false, nil
	}
	defer closer.Close()
	sim := cpu.New(cpu.NewConfig(width, key.isa.ext()), m.build(width))
	t0 := time.Now()
	res, err := sim.RunSampled(src, maxDynInsts, sp.cpu())
	if err != nil {
		if src.Err() != nil {
			invalidateArtifact(key)
			return Result{}, false, nil
		}
		return Result{}, true, err
	}
	traceStats.replays.Add(1)
	traceStats.streamReplays.Add(1)
	traceStats.replayNS.Add(int64(time.Since(t0)))
	return fromCPU(key.name, key.isa, width, m.Name(), res), true, nil
}

// runKernelCached is RunKernel through the trace cache: replay when a trace
// is available, live emulation otherwise. The sample spec applies on both
// paths (sampling over a live source saves no capture time but produces
// the same kind of estimate).
func runKernelCached(kernel string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (Result, error) {
	key := traceKey{name: kernel, isa: i, scale: sc}
	if res, ok, err := runTraced(key, width, m, sp); ok {
		return res, err
	}
	if !sp.Enabled() {
		return RunKernel(kernel, i, width, m, sc)
	}
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.RunSampled(trace.NewLive(emu.New(k.Build(i.ext()))), maxDynInsts, sp.cpu())
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", kernel, i, width, err)
	}
	return fromCPU(kernel, i, width, m.Name(), res), nil
}

// runAppCached is RunApp through the trace cache.
func runAppCached(app string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (Result, error) {
	key := traceKey{app: true, name: app, isa: i, scale: sc}
	if res, ok, err := runTraced(key, width, m, sp); ok {
		return res, err
	}
	if !sp.Enabled() {
		return RunApp(app, i, width, m, sc)
	}
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.RunSampled(trace.NewLive(emu.New(a.Build(i.ext()))), maxDynInsts, sp.cpu())
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", app, i, width, err)
	}
	return fromCPU(app, i, width, m.Name(), res), nil
}

// runConfig times one run under an explicit processor configuration,
// replaying the trace when one is available and otherwise falling back to a
// live machine built by mk; cause says why tr is nil so the fallback is
// attributed correctly (callers obtain both from cachedTraceCause).
func runConfig(cfg cpu.Config, model mem.Model, tr *trace.Trace, cause liveCause, mk func() *emu.Machine) (cpu.Result, error) {
	sim := cpu.New(cfg, model)
	if tr != nil {
		t0 := time.Now()
		res, err := sim.Run(tr.Reader(), maxDynInsts)
		traceStats.replays.Add(1)
		traceStats.replayNS.Add(int64(time.Since(t0)))
		return res, err
	}
	countLiveRun(cause)
	return sim.Run(trace.NewLive(mk()), maxDynInsts)
}

// CaptureWorkloadTrace returns the recorded trace of one workload through
// the process trace cache — RAM first, then the artifact store (and peer
// fetcher, when installed), then a fresh capture written through to disk —
// so tools like momtrace observe the same fill path and TraceStats the
// experiment drivers do. It returns nil when the trace cannot be
// materialised within TraceCacheBytes or the workload cannot be traced.
func CaptureWorkloadTrace(app bool, name string, i ISA, sc Scale) *trace.Trace {
	return cachedTrace(traceKey{app: app, name: name, isa: i, scale: sc})
}

// warmTraces captures the traces for a workload×ISA job list in parallel
// before the replay fan-out, so no replay worker blocks behind a capture
// another configuration also needs. Capture failures are not errors here —
// the affected runs simply fall back to live emulation.
func warmTraces(ctx context.Context, app bool, names []string, isas []ISA, sc Scale) {
	type wk struct {
		name string
		isa  ISA
	}
	var jobs []wk
	for _, n := range names {
		for _, i := range isas {
			jobs = append(jobs, wk{n, i})
		}
	}
	_ = par.For(ctx, len(jobs), func(idx int) error {
		cachedTrace(traceKey{app: app, name: jobs[idx].name, isa: jobs[idx].isa, scale: sc})
		return nil
	})
}
