package mom

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/par"
	"repro/internal/trace"
)

// The process-wide trace cache implements the capture-once / replay-many
// methodology of the paper (ATOM instruments the binary once, the trace
// feeds Jinks for every machine configuration). A dynamic trace depends
// only on (workload, ISA, scale) — never on issue width, cache mode or
// memory latency — so the experiment drivers capture each workload once and
// replay the recording across every machine configuration in parallel.
//
// The cache is an optimisation, never a correctness dependency: when a
// capture fails or the cache is full, callers fall back to the live
// interleaved emulate-and-time path, which produces identical results
// (TestTraceReplayEquivalence enforces this).

// TraceCacheBytes bounds the total memory the trace cache may hold.
// Captures that would push the cache past the bound are discarded and the
// affected runs use live emulation instead. It is read when an entry is
// first populated; set it before running experiments.
var TraceCacheBytes int64 = 1 << 30

// TraceStats reports the accumulated activity of the trace layer.
type TraceStats struct {
	Captures     int64         // traces recorded
	CaptureTime  time.Duration // wall-clock spent capturing (functional emulation)
	Replays      int64         // timing runs fed from a recorded trace
	ReplayTime   time.Duration // wall-clock spent in trace-fed timing runs
	LiveRuns     int64         // timing runs that fell back to live emulation
	CachedTraces int64         // traces currently held
	CachedBytes  int64         // bytes currently held
}

var traceStats struct {
	captures, captureNS, replays, replayNS, liveRuns atomic.Int64
}

// ReadTraceStats returns a snapshot of the trace-layer counters.
func ReadTraceStats() TraceStats {
	traceCache.mu.Lock()
	var held int64
	for _, e := range traceCache.entries {
		if e.tr != nil { // e.tr is only written under traceCache.mu
			held++
		}
	}
	bytes := traceCache.bytes
	traceCache.mu.Unlock()
	return TraceStats{
		Captures:     traceStats.captures.Load(),
		CaptureTime:  time.Duration(traceStats.captureNS.Load()),
		Replays:      traceStats.replays.Load(),
		ReplayTime:   time.Duration(traceStats.replayNS.Load()),
		LiveRuns:     traceStats.liveRuns.Load(),
		CachedTraces: held,
		CachedBytes:  bytes,
	}
}

type traceKey struct {
	app   bool
	name  string
	isa   ISA
	scale Scale
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace // nil if capture failed or cache full
}

var traceCache = struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	bytes   int64
}{entries: map[traceKey]*traceEntry{}}

// entry returns (creating if needed) the cache slot for a key.
func cacheEntry(key traceKey) *traceEntry {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	e, ok := traceCache.entries[key]
	if !ok {
		e = &traceEntry{}
		traceCache.entries[key] = e
	}
	return e
}

// cachedTrace returns the recorded trace for a workload, capturing it on
// first use. It returns nil when the workload cannot be captured within the
// cache budget (or faults); callers then use the live path.
func cachedTrace(key traceKey) *trace.Trace {
	e := cacheEntry(key)
	e.once.Do(func() {
		var m *emu.Machine
		switch {
		case key.app:
			a, err := apps.ByName(key.name, apps.Scale(key.scale))
			if err != nil {
				return
			}
			m = emu.New(a.Build(key.isa.ext()))
		default:
			k, err := kernels.ByName(key.name, kernels.Scale(key.scale))
			if err != nil {
				return
			}
			m = emu.New(k.Build(key.isa.ext()))
		}
		traceCache.mu.Lock()
		budget := TraceCacheBytes - traceCache.bytes
		traceCache.mu.Unlock()
		if budget <= 0 {
			return
		}
		t0 := time.Now()
		tr, err := trace.Capture(m, maxDynInsts, budget)
		if err != nil {
			return
		}
		traceStats.captures.Add(1)
		traceStats.captureNS.Add(int64(time.Since(t0)))
		traceCache.mu.Lock()
		defer traceCache.mu.Unlock()
		if traceCache.bytes+tr.Bytes() > TraceCacheBytes {
			return // another capture consumed the budget meanwhile
		}
		traceCache.bytes += tr.Bytes()
		e.tr = tr
	})
	return e.tr
}

// runTraced times one workload from its recorded trace, sampled when sp is
// enabled (RunSampled with a disabled spec is exactly Run). ok is false
// when no trace is available, in which case the caller must run live.
func runTraced(key traceKey, width int, m MemModel, sp SampleSpec) (Result, bool, error) {
	tr := cachedTrace(key)
	if tr == nil {
		return Result{}, false, nil
	}
	sim := cpu.New(cpu.NewConfig(width, key.isa.ext()), m.build(width))
	t0 := time.Now()
	res, err := sim.RunSampled(tr.Reader(), maxDynInsts, sp.cpu())
	traceStats.replays.Add(1)
	traceStats.replayNS.Add(int64(time.Since(t0)))
	if err != nil {
		return Result{}, true, err
	}
	return fromCPU(key.name, key.isa, width, m.Name(), res), true, nil
}

// runKernelCached is RunKernel through the trace cache: replay when a trace
// is available, live emulation otherwise. The sample spec applies on both
// paths (sampling over a live source saves no capture time but produces
// the same kind of estimate).
func runKernelCached(kernel string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (Result, error) {
	key := traceKey{name: kernel, isa: i, scale: sc}
	if res, ok, err := runTraced(key, width, m, sp); ok {
		return res, err
	}
	traceStats.liveRuns.Add(1)
	if !sp.Enabled() {
		return RunKernel(kernel, i, width, m, sc)
	}
	k, err := kernels.ByName(kernel, kernels.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.RunSampled(trace.NewLive(emu.New(k.Build(i.ext()))), maxDynInsts, sp.cpu())
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", kernel, i, width, err)
	}
	return fromCPU(kernel, i, width, m.Name(), res), nil
}

// runAppCached is RunApp through the trace cache.
func runAppCached(app string, i ISA, width int, m MemModel, sc Scale, sp SampleSpec) (Result, error) {
	key := traceKey{app: true, name: app, isa: i, scale: sc}
	if res, ok, err := runTraced(key, width, m, sp); ok {
		return res, err
	}
	traceStats.liveRuns.Add(1)
	if !sp.Enabled() {
		return RunApp(app, i, width, m, sc)
	}
	a, err := apps.ByName(app, apps.Scale(sc))
	if err != nil {
		return Result{}, err
	}
	sim := cpu.New(cpu.NewConfig(width, i.ext()), m.build(width))
	res, err := sim.RunSampled(trace.NewLive(emu.New(a.Build(i.ext()))), maxDynInsts, sp.cpu())
	if err != nil {
		return Result{}, fmt.Errorf("mom: %s on %s/%d-way: %w", app, i, width, err)
	}
	return fromCPU(app, i, width, m.Name(), res), nil
}

// runConfig times one run under an explicit processor configuration,
// replaying the trace when one is available and otherwise falling back to a
// live machine built by mk.
func runConfig(cfg cpu.Config, model mem.Model, tr *trace.Trace, mk func() *emu.Machine) (cpu.Result, error) {
	sim := cpu.New(cfg, model)
	if tr != nil {
		t0 := time.Now()
		res, err := sim.Run(tr.Reader(), maxDynInsts)
		traceStats.replays.Add(1)
		traceStats.replayNS.Add(int64(time.Since(t0)))
		return res, err
	}
	traceStats.liveRuns.Add(1)
	return sim.Run(trace.NewLive(mk()), maxDynInsts)
}

// warmTraces captures the traces for a workload×ISA job list in parallel
// before the replay fan-out, so no replay worker blocks behind a capture
// another configuration also needs. Capture failures are not errors here —
// the affected runs simply fall back to live emulation.
func warmTraces(ctx context.Context, app bool, names []string, isas []ISA, sc Scale) {
	type wk struct {
		name string
		isa  ISA
	}
	var jobs []wk
	for _, n := range names {
		for _, i := range isas {
			jobs = append(jobs, wk{n, i})
		}
	}
	_ = par.For(ctx, len(jobs), func(idx int) error {
		cachedTrace(traceKey{app: app, name: jobs[idx].name, isa: jobs[idx].isa, scale: sc})
		return nil
	})
}
